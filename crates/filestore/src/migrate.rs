//! Physical archive relocation.
//!
//! The paper's process layer runs a workflow for "physical archive
//! relocation: first, tuples referenced or referencing an entity are queried
//! and altered, then the corresponding files are copied, compensating
//! actions are taken if failures occur, and finally logs are generated"
//! (§5.2). The metadata half of that workflow lives in `hedc-dm`; this
//! module is the file half: copy-verify-delete with compensation, so a
//! failed migration never leaves the source damaged and never leaves a
//! half-copied file at the destination.

use crate::archive::{ArchiveId, FileStore};
use crate::error::{FsError, FsResult};
use crate::fits::checksum;

/// Outcome of one file's migration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MigrationRecord {
    /// File path (same in source and destination).
    pub path: String,
    /// Source archive.
    pub from: ArchiveId,
    /// Destination archive.
    pub to: ArchiveId,
    /// Bytes moved.
    pub bytes: u64,
    /// Content checksum verified after the copy.
    pub checksum: u32,
}

/// Migrate one file from `from` to `to`, verifying content and deleting the
/// source only after the destination copy has been re-read and checked. On
/// any failure the destination is compensated (partial copy removed) and the
/// source is untouched.
pub fn migrate_file(
    store: &FileStore,
    from: ArchiveId,
    to: ArchiveId,
    path: &str,
) -> FsResult<MigrationRecord> {
    let data = store.fetch(from, path)?;
    let sum = checksum(&data);

    if let Err(e) = store.store(to, path, &data) {
        return Err(FsError::MigrationFailed(format!(
            "copy of `{path}` to archive {to} failed: {e}"
        )));
    }

    // Verify by reading back from the destination.
    match store.fetch(to, path) {
        Ok(copied) if checksum(&copied) == sum => {}
        Ok(_) => {
            // Compensate: remove the bad copy.
            let _ = store.delete(to, path);
            return Err(FsError::MigrationFailed(format!(
                "verification of `{path}` on archive {to} failed: checksum mismatch"
            )));
        }
        Err(e) => {
            let _ = store.delete(to, path);
            return Err(FsError::MigrationFailed(format!(
                "read-back of `{path}` from archive {to} failed: {e}"
            )));
        }
    }

    // Source delete is the commit point. If it fails, the file exists in
    // both places — safe (duplicated, not lost); report the failure so the
    // operator can retry the delete.
    store.delete(from, path).map_err(|e| {
        FsError::MigrationFailed(format!(
            "source delete of `{path}` on archive {from} failed after copy: {e}"
        ))
    })?;

    Ok(MigrationRecord {
        path: path.to_string(),
        from,
        to,
        bytes: data.len() as u64,
        checksum: sum,
    })
}

/// Migrate a batch of files; stops at the first failure, returning the
/// records of the files already moved (the workflow's log) alongside the
/// error. Files already moved stay moved — the relocation workflow is
/// restartable, not atomic, exactly like moving files between physical
/// devices.
pub fn migrate_batch(
    store: &FileStore,
    from: ArchiveId,
    to: ArchiveId,
    paths: &[String],
) -> (Vec<MigrationRecord>, Option<FsError>) {
    let mut records = Vec::with_capacity(paths.len());
    for p in paths {
        match migrate_file(store, from, to, p) {
            Ok(rec) => records.push(rec),
            Err(e) => return (records, Some(e)),
        }
    }
    (records, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{Archive, ArchiveState, ArchiveTier};

    fn store_with_two() -> FileStore {
        let fs = FileStore::new();
        fs.register(Archive::in_memory(
            1,
            "disk",
            ArchiveTier::OnlineDisk,
            1 << 20,
        ));
        fs.register(Archive::in_memory(
            2,
            "tape",
            ArchiveTier::TapeVault,
            1 << 20,
        ));
        fs
    }

    #[test]
    fn successful_migration_moves_and_verifies() {
        let fs = store_with_two();
        fs.store(1, "raw/u1.fits", b"payload-1").unwrap();
        let rec = migrate_file(&fs, 1, 2, "raw/u1.fits").unwrap();
        assert_eq!(rec.bytes, 9);
        assert!(!fs.exists(1, "raw/u1.fits"));
        assert_eq!(fs.fetch(2, "raw/u1.fits").unwrap(), b"payload-1");
        assert_eq!(rec.checksum, checksum(b"payload-1"));
    }

    #[test]
    fn missing_source_fails_cleanly() {
        let fs = store_with_two();
        assert!(matches!(
            migrate_file(&fs, 1, 2, "nope"),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn destination_full_is_compensated() {
        let fs = FileStore::new();
        fs.register(Archive::in_memory(
            1,
            "disk",
            ArchiveTier::OnlineDisk,
            1 << 20,
        ));
        fs.register(Archive::in_memory(2, "tiny", ArchiveTier::TapeVault, 4));
        fs.store(1, "f", b"too-large-for-dest").unwrap();
        let err = migrate_file(&fs, 1, 2, "f").unwrap_err();
        assert!(matches!(err, FsError::MigrationFailed(_)));
        // Source intact, destination clean.
        assert!(fs.exists(1, "f"));
        assert!(!fs.exists(2, "f"));
    }

    #[test]
    fn offline_destination_leaves_source_intact() {
        let fs = store_with_two();
        fs.store(1, "f", b"x").unwrap();
        fs.archive(2).unwrap().set_state(ArchiveState::Offline);
        assert!(migrate_file(&fs, 1, 2, "f").is_err());
        assert!(fs.exists(1, "f"));
    }

    #[test]
    fn batch_stops_at_first_failure_keeps_progress() {
        let fs = store_with_two();
        fs.store(1, "a", b"1").unwrap();
        fs.store(1, "b", b"2").unwrap();
        // "c" is missing -> failure mid-batch.
        let paths = vec!["a".to_string(), "c".to_string(), "b".to_string()];
        let (records, err) = migrate_batch(&fs, 1, 2, &paths);
        assert_eq!(records.len(), 1);
        assert!(err.is_some());
        assert!(fs.exists(2, "a"));
        assert!(fs.exists(1, "b"), "b untouched after failure on c");
    }

    #[test]
    fn batch_all_success() {
        let fs = store_with_two();
        for i in 0..5 {
            fs.store(1, &format!("f{i}"), &[i as u8]).unwrap();
        }
        let paths: Vec<String> = (0..5).map(|i| format!("f{i}")).collect();
        let (records, err) = migrate_batch(&fs, 1, 2, &paths);
        assert!(err.is_none());
        assert_eq!(records.len(), 5);
        assert!(fs.archive(1).unwrap().list().is_empty());
        assert_eq!(fs.archive(2).unwrap().list().len(), 5);
    }
}
