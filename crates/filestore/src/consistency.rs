//! Database↔file-system consistency checking.
//!
//! "An obvious problem when dividing the system into a database and a file
//! system is how to maintain consistency between the two" (§4.4). HEDC
//! prevents drift by routing every access through the DM, but a repository
//! that lives for years still wants an auditor: given the set of file
//! references the metadata claims, report files the metadata references but
//! the archives lack (**missing** — data loss) and files the archives hold
//! but nothing references (**orphans** — leaked space).

use crate::archive::{ArchiveId, FileStore};
use std::collections::{BTreeMap, BTreeSet};

/// One expected file reference from the metadata's location tables.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExpectedFile {
    /// Archive the location tables claim holds the file.
    pub archive: ArchiveId,
    /// Path within the archive.
    pub path: String,
}

/// Result of a consistency sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConsistencyReport {
    /// Referenced by metadata but absent from the archive.
    pub missing: Vec<ExpectedFile>,
    /// Present in an archive but referenced by nothing.
    pub orphans: Vec<ExpectedFile>,
    /// References whose archive id is not registered at all.
    pub unknown_archives: Vec<ExpectedFile>,
    /// Files checked and found consistent.
    pub consistent: usize,
}

impl ConsistencyReport {
    /// Whether the sweep found no problems.
    pub fn is_clean(&self) -> bool {
        self.missing.is_empty() && self.orphans.is_empty() && self.unknown_archives.is_empty()
    }
}

/// Sweep all registered archives against the expected reference set.
/// Offline archives are skipped for orphan detection (their contents cannot
/// be listed... they *can* here, but a real tape cannot) and their expected
/// files are assumed present — flagging half the catalog as missing because
/// a tape is dismounted would be noise, not signal.
pub fn check(store: &FileStore, expected: &[ExpectedFile]) -> ConsistencyReport {
    let mut report = ConsistencyReport::default();
    // Group expectations by archive.
    let mut by_archive: BTreeMap<ArchiveId, BTreeSet<&str>> = BTreeMap::new();
    for e in expected {
        if store.archive(e.archive).is_err() {
            report.unknown_archives.push(e.clone());
            continue;
        }
        by_archive.entry(e.archive).or_default().insert(&e.path);
    }
    for id in store.archive_ids() {
        let archive = store.archive(id).expect("listed id");
        if archive.state() == crate::archive::ArchiveState::Offline {
            report.consistent += by_archive.get(&id).map_or(0, BTreeSet::len);
            continue;
        }
        let actual: BTreeSet<String> = archive.list().into_iter().collect();
        let empty = BTreeSet::new();
        let wanted = by_archive.get(&id).unwrap_or(&empty);
        for &path in wanted {
            if actual.contains(path) {
                report.consistent += 1;
            } else {
                report.missing.push(ExpectedFile {
                    archive: id,
                    path: path.to_string(),
                });
            }
        }
        for path in &actual {
            if !wanted.contains(path.as_str()) {
                report.orphans.push(ExpectedFile {
                    archive: id,
                    path: path.clone(),
                });
            }
        }
    }
    report.missing.sort();
    report.orphans.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{Archive, ArchiveState, ArchiveTier};

    fn exp(archive: ArchiveId, path: &str) -> ExpectedFile {
        ExpectedFile {
            archive,
            path: path.to_string(),
        }
    }

    fn store() -> FileStore {
        let fs = FileStore::new();
        fs.register(Archive::in_memory(
            1,
            "disk",
            ArchiveTier::OnlineDisk,
            1 << 20,
        ));
        fs.register(Archive::in_memory(
            2,
            "tape",
            ArchiveTier::TapeVault,
            1 << 20,
        ));
        fs
    }

    #[test]
    fn clean_report() {
        let fs = store();
        fs.store(1, "a", b"1").unwrap();
        fs.store(2, "b", b"2").unwrap();
        let report = check(&fs, &[exp(1, "a"), exp(2, "b")]);
        assert!(report.is_clean());
        assert_eq!(report.consistent, 2);
    }

    #[test]
    fn missing_detected() {
        let fs = store();
        let report = check(&fs, &[exp(1, "ghost")]);
        assert_eq!(report.missing, vec![exp(1, "ghost")]);
        assert!(!report.is_clean());
    }

    #[test]
    fn orphans_detected() {
        let fs = store();
        fs.store(1, "leaked", b"x").unwrap();
        let report = check(&fs, &[]);
        assert_eq!(report.orphans, vec![exp(1, "leaked")]);
    }

    #[test]
    fn unknown_archive_reported() {
        let fs = store();
        let report = check(&fs, &[exp(42, "somewhere")]);
        assert_eq!(report.unknown_archives.len(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn offline_archives_assumed_consistent() {
        let fs = store();
        fs.store(2, "cold", b"x").unwrap();
        fs.archive(2).unwrap().set_state(ArchiveState::Offline);
        let report = check(&fs, &[exp(2, "cold"), exp(2, "also-cold")]);
        // Both expectations counted consistent, no orphan probing.
        assert!(report.is_clean());
        assert_eq!(report.consistent, 2);
    }

    #[test]
    fn mixed_report_sorted() {
        let fs = store();
        fs.store(1, "z-orphan", b"x").unwrap();
        fs.store(1, "a-orphan", b"x").unwrap();
        fs.store(1, "ok", b"x").unwrap();
        let report = check(
            &fs,
            &[exp(1, "ok"), exp(1, "b-missing"), exp(1, "a-missing")],
        );
        assert_eq!(report.consistent, 1);
        assert_eq!(
            report.missing,
            vec![exp(1, "a-missing"), exp(1, "b-missing")]
        );
        assert_eq!(report.orphans, vec![exp(1, "a-orphan"), exp(1, "z-orphan")]);
    }
}
