//! Compression codecs.
//!
//! RHESSI telemetry units are "compressed using gnu-zip" before distribution
//! (paper §2.1). This module provides the equivalent behaviour for the
//! repository: a self-contained LZSS compressor (the same dictionary-coding
//! family as gzip's deflate, minus Huffman entropy coding) plus a
//! varint/delta coder specialized for the monotone photon time-tag streams
//! that dominate raw science data.
//!
//! The container format records the codec and original length, so readers
//! never guess. Incompressible input falls back to stored mode — compression
//! never grows data by more than the 6-byte header.

use crate::error::{FsError, FsResult};

/// Codec identifiers stored in the stream header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Raw bytes, no compression.
    Store,
    /// LZSS dictionary coding.
    Lzss,
}

const MAGIC: u8 = 0xC5;
const WINDOW: usize = 4096;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 18;

// ---------------------------------------------------------------------------
// Varint
// ---------------------------------------------------------------------------

/// Append a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, advancing `pos`.
pub fn get_varint(data: &[u8], pos: &mut usize) -> FsResult<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data
            .get(*pos)
            .ok_or_else(|| FsError::BadCompression("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(FsError::BadCompression("varint overflow".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

// ---------------------------------------------------------------------------
// Delta coding for monotone streams
// ---------------------------------------------------------------------------

/// Delta+varint encode a non-decreasing sequence (photon time tags).
/// Returns an error-free byte stream; decoding validates monotonicity.
pub fn delta_encode(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2 + 8);
    put_varint(&mut out, values.len() as u64);
    let mut prev = 0u64;
    for &v in values {
        // Negative deltas are encoded zig-zag so the coder tolerates slight
        // disorder (detector jitter) without failing.
        let delta = v.wrapping_sub(prev) as i64;
        let zz = ((delta << 1) ^ (delta >> 63)) as u64;
        put_varint(&mut out, zz);
        prev = v;
    }
    out
}

/// Decode a [`delta_encode`] stream.
pub fn delta_decode(data: &[u8]) -> FsResult<Vec<u64>> {
    let mut pos = 0usize;
    let n = get_varint(data, &mut pos)? as usize;
    // Guard against a hostile length prefix before allocating.
    if n > data.len().saturating_mul(8) + 16 {
        return Err(FsError::BadCompression("implausible element count".into()));
    }
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u64;
    for _ in 0..n {
        let zz = get_varint(data, &mut pos)?;
        let delta = ((zz >> 1) as i64) ^ -((zz & 1) as i64);
        prev = prev.wrapping_add(delta as u64);
        out.push(prev);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// LZSS
// ---------------------------------------------------------------------------

/// Compress `data`. The output starts with a 2-byte header (magic + codec)
/// and a varint original length; stored mode is chosen when LZSS does not
/// shrink the input.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let lz = lzss_encode(data);
    let mut out = Vec::with_capacity(lz.len().min(data.len()) + 8);
    out.push(MAGIC);
    if lz.len() < data.len() {
        out.push(1); // Codec::Lzss
        put_varint(&mut out, data.len() as u64);
        out.extend_from_slice(&lz);
    } else {
        out.push(0); // Codec::Store
        put_varint(&mut out, data.len() as u64);
        out.extend_from_slice(data);
    }
    out
}

/// Decompress a [`compress`] stream.
pub fn decompress(data: &[u8]) -> FsResult<Vec<u8>> {
    if data.len() < 2 || data[0] != MAGIC {
        return Err(FsError::BadCompression("missing magic".into()));
    }
    let codec = match data[1] {
        0 => Codec::Store,
        1 => Codec::Lzss,
        other => return Err(FsError::BadCompression(format!("unknown codec {other}"))),
    };
    let mut pos = 2usize;
    let orig_len = get_varint(data, &mut pos)? as usize;
    let body = &data[pos..];
    match codec {
        Codec::Store => {
            if body.len() != orig_len {
                return Err(FsError::BadCompression("stored length mismatch".into()));
            }
            Ok(body.to_vec())
        }
        Codec::Lzss => {
            let out = lzss_decode(body, orig_len)?;
            if out.len() != orig_len {
                return Err(FsError::BadCompression("decoded length mismatch".into()));
            }
            Ok(out)
        }
    }
}

/// Which codec a compressed stream used (for stats/reporting).
pub fn codec_of(data: &[u8]) -> FsResult<Codec> {
    match data {
        [MAGIC, 0, ..] => Ok(Codec::Store),
        [MAGIC, 1, ..] => Ok(Codec::Lzss),
        _ => Err(FsError::BadCompression("missing magic".into())),
    }
}

/// LZSS body: groups of 8 items preceded by a flag byte. Bit set = literal,
/// clear = match encoded as two bytes: offset (12 bits, 1-based back
/// distance) and length-MIN_MATCH (4 bits).
fn lzss_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    // Hash chains over 4-byte prefixes for match search.
    const HASH_SIZE: usize = 1 << 13;
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];
    #[inline]
    fn hash(data: &[u8], i: usize) -> usize {
        let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
        (v.wrapping_mul(2654435761) >> 19) as usize & ((1 << 13) - 1)
    }

    let mut i = 0usize;
    let mut flag = 0u8;
    let mut nitems = 0u8;
    let push_flag_slot = |out: &mut Vec<u8>| {
        let p = out.len();
        out.push(0);
        p
    };
    let mut flag_pos = push_flag_slot(&mut out);

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash(data, i);
            let mut cand = head[h];
            let mut tries = 32;
            while cand != usize::MAX && cand + WINDOW > i && tries > 0 {
                if cand < i {
                    let max = (data.len() - i).min(MAX_MATCH);
                    let mut l = 0usize;
                    while l < max && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_off = i - cand;
                        if l == MAX_MATCH {
                            break;
                        }
                    }
                }
                cand = prev[cand % WINDOW];
                tries -= 1;
            }
        }

        if best_len >= MIN_MATCH && best_off <= WINDOW {
            // Match item (flag bit stays 0).
            let token = (((best_off - 1) as u16) << 4) | ((best_len - MIN_MATCH) as u16 & 0x0f);
            out.extend_from_slice(&token.to_le_bytes());
            // Insert hash entries for every covered position.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    let h = hash(data, i);
                    prev[i % WINDOW] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            flag |= 1 << nitems;
            out.push(data[i]);
            if i + MIN_MATCH <= data.len() {
                let h = hash(data, i);
                prev[i % WINDOW] = head[h];
                head[h] = i;
            }
            i += 1;
        }
        nitems += 1;
        if nitems == 8 {
            out[flag_pos] = flag;
            flag = 0;
            nitems = 0;
            if i < data.len() {
                flag_pos = push_flag_slot(&mut out);
            }
        }
    }
    if nitems > 0 {
        out[flag_pos] = flag;
    } else if out.last() == Some(&0) && out.len() == flag_pos + 1 {
        // Trailing empty flag slot (input length divisible by 8): harmless,
        // decoder stops at orig_len.
    }
    out
}

fn lzss_decode(body: &[u8], orig_len: usize) -> FsResult<Vec<u8>> {
    let mut out = Vec::with_capacity(orig_len);
    let mut i = 0usize;
    while out.len() < orig_len {
        let flag = *body
            .get(i)
            .ok_or_else(|| FsError::BadCompression("truncated flags".into()))?;
        i += 1;
        for bit in 0..8 {
            if out.len() >= orig_len {
                break;
            }
            if flag & (1 << bit) != 0 {
                let b = *body
                    .get(i)
                    .ok_or_else(|| FsError::BadCompression("truncated literal".into()))?;
                i += 1;
                out.push(b);
            } else {
                let lo = *body
                    .get(i)
                    .ok_or_else(|| FsError::BadCompression("truncated match".into()))?;
                let hi = *body
                    .get(i + 1)
                    .ok_or_else(|| FsError::BadCompression("truncated match".into()))?;
                i += 2;
                let token = u16::from_le_bytes([lo, hi]);
                let off = (token >> 4) as usize + 1;
                let len = (token & 0x0f) as usize + MIN_MATCH;
                if off > out.len() {
                    return Err(FsError::BadCompression("match offset before start".into()));
                }
                let start = out.len() - off;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

/// Compression ratio achieved for a buffer (compressed/original, 1.0 = none).
pub fn ratio(original: usize, compressed: usize) -> f64 {
    if original == 0 {
        1.0
    } else {
        compressed as f64 / original as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_truncated_errors() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert!(get_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn delta_roundtrip_monotone() {
        let values: Vec<u64> = (0..1000u64).map(|i| i * 37 + (i % 5)).collect();
        let enc = delta_encode(&values);
        assert!(enc.len() < values.len() * 8 / 2, "deltas should be compact");
        assert_eq!(delta_decode(&enc).unwrap(), values);
    }

    #[test]
    fn delta_roundtrip_with_jitter() {
        // Slightly out-of-order values exercise the zig-zag path.
        let values = vec![10u64, 20, 15, 30, 29, 100];
        assert_eq!(delta_decode(&delta_encode(&values)).unwrap(), values);
    }

    #[test]
    fn delta_empty_and_single() {
        assert_eq!(delta_decode(&delta_encode(&[])).unwrap(), Vec::<u64>::new());
        assert_eq!(delta_decode(&delta_encode(&[42])).unwrap(), vec![42]);
    }

    #[test]
    fn delta_rejects_hostile_length() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX); // absurd count
        assert!(delta_decode(&buf).is_err());
    }

    #[test]
    fn compress_roundtrip_repetitive() {
        let data: Vec<u8> = b"solar flare solar flare solar flare gamma ray burst "
            .iter()
            .copied()
            .cycle()
            .take(10_000)
            .collect();
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 3,
            "repetitive text should shrink well"
        );
        assert_eq!(codec_of(&c).unwrap(), Codec::Lzss);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn compress_roundtrip_incompressible() {
        // Pseudo-random bytes: must fall back to stored mode and roundtrip.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xff) as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(codec_of(&c).unwrap(), Codec::Store);
        assert!(c.len() <= data.len() + 8);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn compress_empty_and_tiny() {
        for data in [&b""[..], &b"a"[..], &b"ab"[..], &b"abc"[..]] {
            let c = compress(data);
            assert_eq!(decompress(&c).unwrap(), data);
        }
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[0xC5]).is_err());
        assert!(decompress(&[0x00, 0x01, 0x02]).is_err());
        assert!(decompress(&[0xC5, 9, 0]).is_err()); // unknown codec
    }

    #[test]
    fn decompress_rejects_bad_match_offset() {
        // Handcraft: magic, lzss, orig_len=4, flag=0 (match), token with
        // offset pointing before start.
        let mut buf = vec![0xC5, 1];
        put_varint(&mut buf, 4);
        buf.push(0x00); // flags: first item is a match
        let token: u16 = 100 << 4; // offset 101, len 4, but output empty
        buf.extend_from_slice(&token.to_le_bytes());
        assert!(decompress(&buf).is_err());
    }

    #[test]
    fn overlapping_match_copies() {
        // "aaaaaaaa..." forces overlapping matches (off=1, len>1).
        let data = vec![b'a'; 4096];
        let c = compress(&data);
        assert!(c.len() < 600);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn exact_multiple_of_eight_items() {
        // Length chosen so item count is a multiple of 8.
        let data: Vec<u8> = (0..64u8).collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }
}
