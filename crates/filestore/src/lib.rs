//! # hedc-filestore — tiered file archives for science data
//!
//! The data half of HEDC's data/metadata split (paper §4.1–§4.4): raw
//! telemetry and derived data products live as **immutable files** in
//! archives of very different physical character — backed-up RAID, bulk
//! disk, NFS-linked remote archives, and a tape vault. The metadata
//! database (`hedc-metadb`) holds *references* to these files; nothing
//! reaches the bytes except through those references.
//!
//! Provided here:
//!
//! * [`FitsFile`] — a FITS-like container (80-byte cards, 2880-byte blocks,
//!   checksummed data unit) with typed payloads: [`PhotonList`] for raw
//!   telemetry and [`ImageData`] for derived images (§2.1).
//! * [`codec`] — an LZSS compressor (the "gnu-zip" step) and delta/varint
//!   coding for photon time tags.
//! * [`Archive`] / [`FileStore`] — tiered archives with capacity limits,
//!   online/offline state, and a simulated I/O cost meter per tier (§2.3).
//! * [`migrate_file`] — the copy-verify-delete relocation workflow with
//!   compensation (§5.2).
//! * [`consistency::check`] — the DB↔FS auditor (§4.4).
//!
//! ```
//! use hedc_filestore::{Archive, ArchiveTier, FileStore, FitsFile, Header, PhotonList};
//!
//! let store = FileStore::new();
//! store.register(Archive::in_memory(1, "bulk-disk", ArchiveTier::OnlineDisk, 1 << 30));
//!
//! // Package a photon list the way the mission pipeline does.
//! let photons = PhotonList {
//!     times_ms: vec![1000, 1003, 1009],
//!     energies_kev: vec![12.0, 45.5, 3.2],
//!     detectors: vec![0, 4, 8],
//! };
//! let fits = photons.to_fits(Header::new());
//! store.store(1, "raw/2002/unit0001.fits", &fits.to_bytes()).unwrap();
//!
//! // Read it back through the archive.
//! let bytes = store.fetch(1, "raw/2002/unit0001.fits").unwrap();
//! let decoded = PhotonList::from_fits(&FitsFile::from_bytes(&bytes).unwrap()).unwrap();
//! assert_eq!(decoded.times_ms, vec![1000, 1003, 1009]);
//! ```

#![warn(missing_docs)]

mod archive;
pub mod codec;
pub mod consistency;
mod error;
mod fits;
mod migrate;

pub use archive::{
    Archive, ArchiveBackend, ArchiveId, ArchiveState, ArchiveStatus, ArchiveTier, CostModel,
    DirBackend, FileStore, IoMeter, IoSnapshot, MemBackend,
};
pub use consistency::{check as consistency_check, ConsistencyReport, ExpectedFile};
pub use error::{FsError, FsResult};
pub use fits::{checksum, CardValue, FitsFile, Header, ImageData, PhotonList, BLOCK, CARD};
pub use migrate::{migrate_batch, migrate_file, MigrationRecord};
