//! Error types for the file archive layer.

use std::fmt;

/// Errors from archive and file-format operations.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum FsError {
    /// No archive registered under the given id.
    NoSuchArchive(u32),
    /// No file with the given path exists in the archive.
    NotFound(String),
    /// A file with the given path already exists (files are immutable).
    AlreadyExists(String),
    /// The archive is offline (e.g. unmounted tape) and cannot serve reads.
    Offline(u32),
    /// The archive has insufficient capacity for the write.
    CapacityExceeded {
        archive: u32,
        needed: u64,
        free: u64,
    },
    /// A FITS container failed validation.
    BadFormat(String),
    /// Stored checksum does not match recomputed content checksum.
    ChecksumMismatch { path: String },
    /// Compressed data could not be decoded.
    BadCompression(String),
    /// Underlying I/O failure.
    Io(String),
    /// A migration step failed and was compensated.
    MigrationFailed(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NoSuchArchive(id) => write!(f, "no such archive {id}"),
            FsError::NotFound(p) => write!(f, "file not found: {p}"),
            FsError::AlreadyExists(p) => write!(f, "file already exists: {p}"),
            FsError::Offline(id) => write!(f, "archive {id} is offline"),
            FsError::CapacityExceeded {
                archive,
                needed,
                free,
            } => write!(
                f,
                "archive {archive} capacity exceeded: need {needed} bytes, {free} free"
            ),
            FsError::BadFormat(msg) => write!(f, "bad container format: {msg}"),
            FsError::ChecksumMismatch { path } => write!(f, "checksum mismatch: {path}"),
            FsError::BadCompression(msg) => write!(f, "bad compressed stream: {msg}"),
            FsError::Io(msg) => write!(f, "I/O error: {msg}"),
            FsError::MigrationFailed(msg) => write!(f, "migration failed: {msg}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<std::io::Error> for FsError {
    fn from(e: std::io::Error) -> Self {
        FsError::Io(e.to_string())
    }
}

/// Crate-wide result alias.
pub type FsResult<T> = Result<T, FsError>;
